//! End-to-end tests of the `zarf` command-line driver.

use std::process::Command;

fn zarf(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_zarf"))
        .args(args)
        .output()
        .expect("zarf binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_temp(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(format!("zarf_cli_test_{name}"));
    std::fs::write(&path, contents).unwrap();
    path.to_string_lossy().into_owned()
}

const PROG: &str = "fun main =\n  let a = getint 0 in\n  let b = mul a 6 in\n  let c = putint 1 b in\n  result c\n";

#[test]
fn asm_then_run_binary() {
    let src = write_temp("a.zf", PROG);
    let (ok, out, err) = zarf(&["asm", &src]);
    assert!(ok, "{err}");
    assert!(out.contains("words"));
    let bin = src.replace(".zf", ".zbin");
    let (ok, out, err) = zarf(&["run", &bin, "--in", "0:7"]);
    assert!(ok, "{err}");
    assert!(out.contains("result: 42"), "{out}");
    assert!(out.contains("port 1 wrote: [42]"), "{out}");
}

#[test]
fn run_engines_agree() {
    let src = write_temp("b.zf", PROG);
    for engine in ["big", "small", "hw"] {
        let (ok, out, err) = zarf(&["run", &src, "--engine", engine, "--in", "0:7"]);
        assert!(ok, "{engine}: {err}");
        assert!(out.contains("result: 42"), "{engine}: {out}");
    }
}

#[test]
fn dis_and_hex_render() {
    let src = write_temp("c.zf", PROG);
    let (ok, out, _) = zarf(&["dis", &src]);
    assert!(ok);
    assert!(out.contains("fun 0x100"));
    let (ok, out, _) = zarf(&["hex", &src]);
    assert!(ok);
    assert!(out.contains("magic"));
}

#[test]
fn wcet_reports_cycles() {
    let src = write_temp("d.zf", PROG);
    let (ok, out, _) = zarf(&["wcet", &src]);
    assert!(ok);
    assert!(out.contains("WCET of 0x100"), "{out}");
    let (ok2, out2, _) = zarf(&["wcet", &src, "--lazy"]);
    assert!(ok2);
    assert!(out2.contains("WCET of 0x100"));
}

#[test]
fn lint_flags_dead_code() {
    let src = write_temp("e.zf", "fun main =\n  let dead = add 1 2 in\n  result 0\n");
    let (ok, out, _) = zarf(&["lint", &src]);
    assert!(ok);
    assert!(out.contains("never used"), "{out}");
}

#[test]
fn check_accepts_and_rejects_annotated_sources() {
    let good = write_temp(
        "f.zfa",
        "port in 0 T\nport out 1 T\nfun main : num^T =\n  let t = getint 0 in\n  let w = putint 1 t in\n  result w\n",
    );
    let (ok, out, _) = zarf(&["check", &good]);
    assert!(ok);
    assert!(out.contains("WELL-TYPED"));

    let bad = write_temp(
        "g.zfa",
        "port in 9 U\nport out 1 T\nfun main : num^U =\n  let u = getint 9 in\n  let w = putint 1 u in\n  result w\n",
    );
    let (ok, _, err) = zarf(&["check", &bad]);
    assert!(!ok);
    assert!(err.contains("REJECTED"), "{err}");
}

#[test]
fn trace_emits_ndjson_on_every_engine() {
    let src = write_temp("h.zf", PROG);
    for engine in ["big", "small", "hw"] {
        let (ok, out, err) = zarf(&["trace", &src, "--engine", engine, "--in", "0:7"]);
        assert!(ok, "{engine}: {err}");
        assert!(err.contains("event(s)"), "{engine}: {err}");
        for line in out.lines() {
            assert!(
                line.starts_with("{\"ev\":\"") && line.ends_with('}'),
                "{engine}: not an NDJSON event line: {line}"
            );
        }
        assert!(out.lines().count() >= 4, "{engine}: too few events:\n{out}");
    }
    // The reference engines also record the bound values themselves.
    let (_, out, _) = zarf(&["trace", &src, "--engine", "big", "--in", "0:7"]);
    assert!(out.contains(r#""ev":"bind""#), "{out}");
    assert!(out.contains(r#""value":"42""#), "{out}");
}

#[test]
fn trace_writes_to_file_with_out_flag() {
    let src = write_temp("i.zf", PROG);
    let out_path = std::env::temp_dir().join("zarf_cli_test_i.ndjson");
    let (ok, stdout, err) = zarf(&[
        "trace",
        &src,
        "--in",
        "0:7",
        "--out",
        &out_path.to_string_lossy(),
    ]);
    assert!(ok, "{err}");
    assert!(stdout.is_empty());
    let contents = std::fs::read_to_string(&out_path).unwrap();
    assert!(
        contents.lines().all(|l| l.starts_with("{\"ev\":\"")),
        "{contents}"
    );
    assert!(contents.contains(r#""ev":"io_write""#), "{contents}");
}

#[test]
fn profile_prints_metrics_report() {
    let src = write_temp("j.zf", PROG);
    let (ok, out, err) = zarf(&["profile", &src, "--in", "0:7"]);
    assert!(ok, "{err}");
    assert!(out.contains("instructions: 4"), "{out}");
    assert!(out.contains("mutator cycles:"), "{out}");
    assert!(out.contains("per-function cycles"), "{out}");
    assert!(out.contains("main"), "{out}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let (ok, _, err) = zarf(&[]);
    assert!(!ok);
    assert!(err.contains("usage"));
    let (ok, _, _) = zarf(&["frobnicate", "/nonexistent"]);
    assert!(!ok);
}

const FAULTY_PROG: &str = "fun f x =\n  result x\nfun main =\n  let g = f in\n  case g of\n  | 0 => result 1\n  else result 0\n";

#[test]
fn vet_passes_a_clean_program() {
    let src = write_temp("k.zf", PROG);
    let (ok, out, err) = zarf(&["vet", &src]);
    assert!(ok, "{err}");
    assert!(out.contains("case-fault-free=true"), "{out}");
    assert!(out.contains("arity-fault-free=true"), "{out}");
    // The verdict line is always last and machine-readable.
    let last = out.lines().last().unwrap();
    assert!(last.starts_with("{\"verdict\":\"pass\""), "{last}");
}

#[test]
fn vet_rejects_a_faulty_binary_with_nonzero_exit() {
    // Vet the *binary*, not the source: assemble first, then vet the
    // .zbin image, which must fail with an explicit violation.
    let src = write_temp("l.zf", FAULTY_PROG);
    let (ok, _, err) = zarf(&["asm", &src]);
    assert!(ok, "{err}");
    let bin = src.replace(".zf", ".zbin");
    let (ok, out, _) = zarf(&["vet", &bin]);
    assert!(!ok, "vet accepted a program that cases on a closure");
    assert!(out.contains("violation:"), "{out}");
    assert!(out.contains("case-on-closure"), "{out}");
    let last = out.lines().last().unwrap();
    assert!(last.starts_with("{\"verdict\":\"fail\""), "{last}");
}

#[test]
fn vet_json_reports_bounds_and_certificates() {
    let src = write_temp("m.zf", PROG);
    let (ok, out, err) = zarf(&["vet", &src, "--json", "--model", "service"]);
    assert!(ok, "{err}");
    let report = out.lines().next().unwrap();
    assert!(report.contains("\"case_fault_free\":true"), "{report}");
    assert!(report.contains("\"program_alloc_bound\":"), "{report}");
    assert!(report.contains("\"functions\":["), "{report}");
}

#[test]
fn vet_certifies_the_shipped_images() {
    for image in ["@kernel", "@session", "@icd"] {
        for model in ["standalone", "service"] {
            let (ok, out, err) = zarf(&["vet", image, "--model", model]);
            assert!(ok, "{image} ({model}): {err}");
            let last = out.lines().last().unwrap();
            assert!(last.starts_with("{\"verdict\":\"pass\""), "{image}: {last}");
        }
    }
}

#[test]
fn flag_only_invocations_are_handled() {
    let (ok, out, _) = zarf(&["--help"]);
    assert!(ok);
    assert!(out.contains("usage"), "{out}");
    let (ok, out, _) = zarf(&["--version"]);
    assert!(ok);
    assert!(out.starts_with("zarf "), "{out}");
    let (ok, _, err) = zarf(&["--frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown flag"), "{err}");
    // Per-subcommand help for vet.
    let (ok, out, _) = zarf(&["vet", "--help"]);
    assert!(ok);
    assert!(out.contains("--model"), "{out}");
    // vet with a flag where the file should be: usage error, not a read
    // of a file literally named `--json`.
    let (ok, _, err) = zarf(&["vet", "--json"]);
    assert!(!ok);
    assert!(err.contains("vet needs"), "{err}");
}
