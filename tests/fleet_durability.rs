//! Durability proofs for the content-addressed snapshot store beneath
//! the fleet (`zarf serve --data-dir`).
//!
//! Four suites:
//!
//! * **In-process restart** — a fleet writing through a store is shut
//!   down, the store reopened, and a fresh fleet must recover every
//!   committed session byte-identical to the `run_standalone` oracle,
//!   continue executing on top of the recovered state, and never reuse
//!   a session id.
//! * **SIGKILL at arbitrary commit points** — a real `zarf serve
//!   --data-dir` process is killed (no cleanup, no `Drop`) at varied
//!   points — right after open, after k acknowledged ops, and mid-burst
//!   with commits racing the kill, plus a planted mid-manifest-swap
//!   temp file — and every restart must recover exactly a committed
//!   prefix, byte-identical to the standalone oracle for that prefix.
//! * **Byte-boundary damage** — every store file is truncated and
//!   bit-flipped at (strided) byte positions; recovery must either
//!   surface a typed `StoreError` or reproduce committed snapshots
//!   exactly. There is no third outcome: a silently divergent byte is a
//!   failure. The exhaustive every-byte variant runs under `--ignored`.
//! * **Seeded disk-fault soak** — `FaultPlan::seeded_store` injects
//!   torn writes, bit rot, lost chunk writes, and fsync failures while
//!   sessions commit; every snapshot read back, before or after
//!   recovery, is byte-exact or a typed error naming the damage.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use zarf::chaos::FaultPlan;
use zarf::fleet::{
    run_standalone, Client, Fleet, FleetConfig, Op, Request, Response, SessionConfig,
};
use zarf::store::{fsck, Store, StoreConfig};

const WAIT: Duration = Duration::from_secs(120);

/// The running-sum program from the fleet equivalence suites: op `k`
/// with arg `n` logs the pre-add state to port 1 and threads `s + n`
/// forward. `main` is item 0x100, so `tally` is 0x101.
const TALLY_SRC: &str = "fun tally s n =\n\
                         \x20 let w = putint 1 s in\n\
                         \x20 case w of else\n\
                         \x20 let t = add s n in\n\
                         \x20 result t\n\
                         fun main = result 0";

const WORK_ITEM: u32 = 0x101;

/// Ops `from+1 ..= from+n`, each op's arg equal to its 1-based index so
/// any prefix of the sequence is itself a deterministic workload.
fn tally_ops(from: u64, n: u64) -> Vec<Op> {
    (from + 1..=from + n)
        .map(|i| Op::step(WORK_ITEM, vec![i as i32], vec![]))
        .collect()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("zarf_dur_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open_store(dir: &Path) -> Arc<Store> {
    Arc::new(Store::open(dir, StoreConfig::default()).unwrap())
}

/// Suite 1: stop a store-backed fleet, reopen the directory, and the
/// new fleet must serve every committed session byte-identical to the
/// standalone oracle — then keep executing on top of the recovered
/// bytes with results identical to a never-restarted run.
#[test]
fn restarted_fleet_recovers_sessions_byte_identical_to_standalone() {
    let tmp = TempDir::new("inproc");
    let words = zarf::asm::assemble(TALLY_SRC).unwrap();
    let plain = SessionConfig::default();
    let choppy = SessionConfig {
        fuel_slice: 1, // one commit per op: maximum commit points
        ..SessionConfig::default()
    };

    let (a, b) = {
        let fleet = Fleet::start(FleetConfig {
            workers: 2,
            store: Some(open_store(tmp.path())),
            ..FleetConfig::default()
        })
        .unwrap();
        let handle = fleet.handle();
        let a = handle.open_program(&words, Some(plain.clone())).unwrap();
        let b = handle.open_program(&words, Some(choppy.clone())).unwrap();
        handle.inject_batch(a, tally_ops(0, 9)).unwrap();
        handle.inject_batch(b, tally_ops(0, 4)).unwrap();
        handle.wait_idle(a, WAIT).unwrap();
        handle.wait_idle(b, WAIT).unwrap();
        fleet.shutdown();
        (a, b)
    };

    // Reopen: the store alone must carry both sessions.
    let store = open_store(tmp.path());
    let mut ids: Vec<u64> = store.sessions().iter().map(|s| s.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![a, b], "store lost or invented sessions");

    let fleet = Fleet::start(FleetConfig {
        workers: 2,
        store: Some(store),
        ..FleetConfig::default()
    })
    .unwrap();
    let handle = fleet.handle();

    let (_, want_a) = run_standalone(&words, &plain, &tally_ops(0, 9)).unwrap();
    let (_, want_b) = run_standalone(&words, &choppy, &tally_ops(0, 4)).unwrap();
    assert_eq!(
        handle.snapshot(a).unwrap(),
        want_a,
        "session {a} diverged across restart"
    );
    assert_eq!(
        handle.snapshot(b).unwrap(),
        want_b,
        "session {b} diverged across restart"
    );
    assert_eq!(handle.session_stats(a).unwrap().ops_done, 9);
    assert_eq!(handle.session_stats(b).unwrap().ops_done, 4);

    // Execution continues on top of the recovered bytes: ops 10..=12
    // into the recovered session must land exactly where a
    // never-restarted fleet would put them.
    handle.inject_batch(a, tally_ops(9, 3)).unwrap();
    handle.wait_idle(a, WAIT).unwrap();
    let (_, want_full) = run_standalone(&words, &plain, &tally_ops(0, 12)).unwrap();
    assert_eq!(
        handle.snapshot(a).unwrap(),
        want_full,
        "continued execution diverged from an unbroken run"
    );

    // Recovery seeds id allocation above everything ever issued.
    let c = handle.open_program(&words, None).unwrap();
    assert!(c > a.max(b), "recovered fleet reused a session id");
    fleet.shutdown();
}

/// Spawn `zarf serve --data-dir` on an ephemeral port and return the
/// child plus the address it reports on stderr.
fn spawn_serve(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_zarf"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--data-dir",
            dir.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            let _ = child.kill();
            panic!("serve exited before announcing its address");
        }
        if let Some(rest) = line.split("serving ZFLT on ").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = reader.read_to_end(&mut sink);
    });
    (child, addr)
}

fn stat_of(client: &mut Client, session: u64, key: &str) -> u64 {
    match client.call(&Request::Stats { session }).unwrap() {
        Response::StatsData { pairs } => {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("no `{key}` in session {session} stats"))
                .1
        }
        other => panic!("unexpected response {other:?}"),
    }
}

fn snapshot_of(client: &mut Client, session: u64) -> Vec<u8> {
    match client.call(&Request::Snapshot { session }).unwrap() {
        Response::SnapshotData { bytes, .. } => bytes,
        other => panic!("unexpected response {other:?}"),
    }
}

/// Suite 2: SIGKILL a real serve process at varied commit points. After
/// every restart, each surviving session must hold exactly the
/// standalone-oracle state for its recovered op count — a committed
/// prefix, never a blend — including after a kill that raced in-flight
/// commits and after a planted mid-manifest-swap temp file.
#[test]
fn sigkill_at_arbitrary_commit_points_recovers_a_committed_prefix() {
    let tmp = TempDir::new("sigkill");
    let words = zarf::asm::assemble(TALLY_SRC).unwrap();
    let choppy = SessionConfig {
        fuel_slice: 1,
        ..SessionConfig::default()
    };
    // session id -> ops the server acknowledged as done before its kill.
    let mut acked: HashMap<u64, u64> = HashMap::new();

    let verify_recovered = |client: &mut Client, acked: &HashMap<u64, u64>| {
        for (&sid, &floor) in acked {
            let done = stat_of(client, sid, "ops_done");
            assert!(
                done >= floor,
                "session {sid} lost acknowledged ops: {done} < {floor}"
            );
            let (_, want) = run_standalone(&words, &choppy, &tally_ops(0, done)).unwrap();
            assert_eq!(
                snapshot_of(client, sid),
                want,
                "session {sid} is not the committed prefix of {done} op(s)"
            );
        }
    };

    // Rounds 1-3: kill after 0, 3, and 7 acknowledged ops.
    for kill_after in [0u64, 3, 7] {
        let (mut child, addr) = spawn_serve(tmp.path());
        let mut client = Client::connect(&addr).unwrap();
        verify_recovered(&mut client, &acked);
        let sid = match client
            .call(&Request::LoadProgram {
                config: choppy.clone(),
                program: words.clone(),
            })
            .unwrap()
        {
            Response::Opened { session } => session,
            other => panic!("unexpected response {other:?}"),
        };
        if kill_after > 0 {
            client
                .call(&Request::InjectBatch {
                    session: sid,
                    ops: tally_ops(0, kill_after),
                })
                .unwrap();
            while stat_of(&mut client, sid, "ops_done") < kill_after {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        acked.insert(sid, kill_after);
        child.kill().unwrap();
        child.wait().unwrap();
    }

    // Round 4: kill racing a burst of in-flight commits — whatever
    // prefix landed must be consistent. The session is not in `acked`
    // (nothing was acknowledged), so it is checked directly.
    let racing = {
        let (mut child, addr) = spawn_serve(tmp.path());
        let mut client = Client::connect(&addr).unwrap();
        verify_recovered(&mut client, &acked);
        let sid = match client
            .call(&Request::LoadProgram {
                config: choppy.clone(),
                program: words.clone(),
            })
            .unwrap()
        {
            Response::Opened { session } => session,
            other => panic!("unexpected response {other:?}"),
        };
        client
            .call(&Request::InjectBatch {
                session: sid,
                ops: tally_ops(0, 32),
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(15));
        child.kill().unwrap();
        child.wait().unwrap();
        sid
    };
    // The open itself was acknowledged, so the session must recover.
    acked.insert(racing, 0);

    // A kill mid-manifest-swap leaves a temp file next to the manifest;
    // recovery must ignore and remove it.
    std::fs::write(tmp.path().join("store.zman.tmp"), b"torn half-written").unwrap();

    // Final round: everything recovers, then a clean shutdown.
    let (mut child, addr) = spawn_serve(tmp.path());
    let mut client = Client::connect(&addr).unwrap();
    verify_recovered(&mut client, &acked);
    assert!(
        !tmp.path().join("store.zman.tmp").exists(),
        "stale manifest temp file survived recovery"
    );
    let done = stat_of(&mut client, racing, "ops_done");
    assert!(done <= 32, "session {racing} invented ops: {done}");
    match client.call(&Request::Shutdown).unwrap() {
        Response::Bye => {}
        other => panic!("unexpected response {other:?}"),
    }
    child.wait().unwrap();

    let report = fsck(tmp.path()).unwrap();
    assert!(
        report.bad_sessions.is_empty() && report.damaged_segments.is_empty(),
        "fsck found damage after recovery: {report:?}"
    );
}

/// Deterministic patterned bytes: arbitrary but reproducible snapshot
/// payloads for store-level suites (the store never interprets them).
fn pattern(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn meta(id: u64, commit_seq: u64) -> zarf::store::SessionMeta {
    zarf::store::SessionMeta {
        id,
        commit_seq,
        ops_done: commit_seq,
        heap_words: 4096,
        op_budget: 64,
        fuel_slice: 1000,
        verified: false,
    }
}

/// Build a pristine store with committed state in both the manifest
/// checkpoint and the journal tail, then return its sessions.
fn build_reference(dir: &Path) -> HashMap<u64, Vec<u8>> {
    let store = Store::open(dir, StoreConfig::default()).unwrap();
    let mut want = HashMap::new();
    for id in 1..=3u64 {
        // Overlapping content across sessions so damage to one shared
        // chunk is visible through several sessions.
        let mut snap = pattern(7, 2048 + 512 * id as usize);
        snap.extend_from_slice(&pattern(id, 3000));
        store.put_session(&meta(id, 1), &snap).unwrap();
        want.insert(id, snap);
    }
    store.flush().unwrap(); // checkpoint: sessions 1-3 in the manifest
    let snap = pattern(99, 4100);
    store.put_session(&meta(4, 1), &snap).unwrap();
    want.insert(4, snap);
    std::mem::forget(store); // crash: session 4 exists only in the journal
    want
}

/// Apply one mutation to a copy of the pristine directory and check the
/// recovery dichotomy: `Store::open` + reads either yield exactly the
/// committed bytes or a typed error. Returns how many sessions read
/// back successfully, so callers can see both outcomes occur.
fn check_mutation(
    pristine: &HashMap<String, Vec<u8>>,
    want: &HashMap<u64, Vec<u8>>,
    work: &Path,
    file: &str,
    mutate: impl FnOnce(&mut Vec<u8>),
) -> usize {
    for (name, bytes) in pristine {
        std::fs::write(work.join(name), bytes).unwrap();
    }
    let mut bytes = pristine[file].clone();
    mutate(&mut bytes);
    std::fs::write(work.join(file), &bytes).unwrap();

    let store = match Store::open(work, StoreConfig::default()) {
        Ok(s) => s,
        Err(_) => return 0, // typed refusal is a legal outcome
    };
    let mut served = 0;
    for rec in store.sessions() {
        let expected = want
            .get(&rec.id)
            .unwrap_or_else(|| panic!("recovery invented session {}", rec.id));
        // A typed error naming the damage is legal; a divergent byte is not.
        if let Ok(bytes) = store.get_snapshot(rec.id) {
            assert_eq!(
                &bytes, expected,
                "silent divergence in session {} ({file} mutated)",
                rec.id
            );
            served += 1;
        }
    }
    served
}

fn damage_sweep(stride: usize) {
    let pristine_dir = TempDir::new(&format!("prop_src_{stride}"));
    let want = build_reference(pristine_dir.path());
    let mut pristine: HashMap<String, Vec<u8>> = HashMap::new();
    for entry in std::fs::read_dir(pristine_dir.path()).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        pristine.insert(name.clone(), std::fs::read(entry.path()).unwrap());
    }
    assert!(
        pristine.len() >= 2,
        "expected segments + manifest + journal"
    );

    let work = TempDir::new(&format!("prop_work_{stride}"));
    let (mut truncations, mut flips, mut served_total) = (0u64, 0u64, 0usize);
    for (file, bytes) in &pristine {
        for cut in (0..bytes.len()).step_by(stride) {
            served_total += check_mutation(&pristine, &want, work.path(), file, |b| {
                b.truncate(cut);
            });
            truncations += 1;
        }
        for pos in (0..bytes.len()).step_by(stride) {
            let bit = 1u8 << (pos % 8);
            served_total += check_mutation(&pristine, &want, work.path(), file, |b| {
                b[pos] ^= bit;
            });
            flips += 1;
        }
    }
    assert!(truncations > 0 && flips > 0);
    // The dichotomy must not hold vacuously: plenty of mutations leave
    // most sessions readable (damage is contained, not amplified).
    assert!(
        served_total as u64 > (truncations + flips),
        "recovery served almost nothing across {truncations} truncations and {flips} flips"
    );
}

/// Suite 3 (strided): truncate and bit-flip every store file at strided
/// byte positions; recovery never silently diverges.
#[test]
fn byte_boundary_damage_recovers_exactly_or_fails_typed() {
    damage_sweep(37);
}

/// Suite 3 (exhaustive, `--ignored`): every single byte boundary of
/// every file, both mutations. Minutes of work; run in the CI
/// durability-soak job.
#[test]
#[ignore = "exhaustive every-byte sweep; run with --ignored in durability-soak"]
fn byte_boundary_damage_exhaustive() {
    damage_sweep(1);
}

/// Suite 4: seeded disk-fault soak. Torn writes, bit rot, lost chunk
/// writes, and fsync failures are injected while sessions commit; every
/// read, before and after recovery, is byte-exact or a typed error, and
/// acknowledged commits survive into the recovered manifest.
#[test]
fn seeded_disk_fault_soak_never_diverges_silently() {
    for seed in 0..8u64 {
        let tmp = TempDir::new(&format!("soak_{seed}"));
        let plan = FaultPlan::seeded_store(seed, 96, 3);
        let store = Store::open(
            tmp.path(),
            StoreConfig {
                chaos: Some(plan),
                checkpoint_every: 2, // manifest swaps inside the fault window
                segment_bytes: 16 * 1024, // several segment rolls
                ..StoreConfig::default()
            },
        )
        .unwrap();

        // Everything we ever asked the store to commit, and the subset
        // it acknowledged.
        let mut attempted: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut acked: Vec<u64> = Vec::new();
        for id in 1..=16u64 {
            let mut snap = pattern(seed, 1024 + 200 * id as usize);
            snap.extend_from_slice(&pattern(7, 2048)); // dedup'd shared tail
            attempted.insert(id, snap.clone());
            match store.put_session(&meta(id, 1), &snap) {
                Ok(()) => {
                    acked.push(id);
                    // An immediate read-back may legally fail typed (a
                    // lost chunk write surfaces on read) but must never
                    // return different bytes.
                    if let Ok(bytes) = store.get_snapshot(id) {
                        assert_eq!(bytes, snap, "seed {seed}: live read diverged");
                    }
                }
                Err(e) => {
                    assert!(!e.kind().is_empty());
                    if store.stalled().is_some() {
                        break; // stalled stores refuse further mutations
                    }
                }
            }
        }
        let faults = store.injected();
        drop(store);

        // Recovery with injection off: the dichotomy, plus no
        // acknowledged commit may vanish.
        match Store::open(tmp.path(), StoreConfig::default()) {
            Err(e) => {
                // A typed open failure is only legal if a fault was
                // actually injected into manifest/journal machinery.
                assert!(
                    !faults.is_empty(),
                    "seed {seed}: store refused to open with no injected fault: {e}"
                );
            }
            Ok(recovered) => {
                let have: Vec<u64> = recovered.sessions().iter().map(|s| s.id).collect();
                for id in &acked {
                    assert!(
                        have.contains(id),
                        "seed {seed}: acknowledged session {id} vanished"
                    );
                }
                for rec in recovered.sessions() {
                    let want = attempted
                        .get(&rec.id)
                        .unwrap_or_else(|| panic!("seed {seed}: invented session {}", rec.id));
                    match recovered.get_snapshot(rec.id) {
                        Ok(bytes) => assert_eq!(
                            &bytes, want,
                            "seed {seed}: session {} silently diverged",
                            rec.id
                        ),
                        Err(e) => {
                            // Typed, and only when something was injected.
                            assert!(
                                !faults.is_empty(),
                                "seed {seed}: session {} unreadable with no fault: {e}",
                                rec.id
                            );
                        }
                    }
                }
            }
        }
        // The offline sweep must always complete without panicking,
        // damaged or not.
        let _ = fsck(tmp.path()).unwrap();
    }
}
