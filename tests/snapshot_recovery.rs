//! Resume equivalence: rollback recovery is trace-exact.
//!
//! The contract under test is the strongest one checkpointing can make:
//! after the watchdog rolls the system back to a checkpoint, the NDJSON
//! event stream it emits from the rollback onward is **byte-identical**
//! to what an uninterrupted run emits from the same checkpoint onward.
//! Not "the pacing matches" — every cycle charge, allocation, GC pause,
//! channel word, and checkpoint capture afterwards is the same.

use std::cell::RefCell;
use std::rc::Rc;

use zarf::chaos::{FaultPlan, PlanShape};
use zarf::icd::consts::SAMPLE_HZ;
use zarf::icd::signal::{EcgConfig, EcgGen, Rhythm};
use zarf::kernel::{RecoveryPolicy, SupervisedOutcome, System, WatchdogConfig};
use zarf::trace::{NdjsonSink, SharedSink};

const INTERVAL: u64 = 8;

fn steady_samples(seconds: f64) -> Vec<i32> {
    let mut g = EcgGen::new(
        EcgConfig {
            noise: 0,
            ..EcgConfig::default()
        },
        vec![Rhythm::Steady {
            bpm: 190.0,
            seconds,
        }],
    );
    g.take((seconds * SAMPLE_HZ as f64) as usize)
}

fn rollback_config() -> WatchdogConfig {
    WatchdogConfig {
        policy: RecoveryPolicy::RollbackToCheckpoint {
            interval: INTERVAL,
            max_rollbacks: 4,
        },
        ..WatchdogConfig::default()
    }
}

/// A clonable in-memory writer so the NDJSON bytes survive the sink.
#[derive(Clone, Default)]
struct Buf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for Buf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run the supervised system under the rollback policy, optionally with a
/// fault plan, and return (NDJSON text, outcome name, rollbacks).
fn traced_rollback_run(samples: &[i32], plan: Option<FaultPlan>) -> (String, &'static str, u32) {
    let buf = Buf::default();
    let shared = SharedSink::new(NdjsonSink::new(buf.clone()));
    let mut sys = System::new(samples.to_vec()).expect("system construction");
    sys.set_shared_sink(&shared);
    if let Some(plan) = plan {
        sys.enable_chaos(plan);
    }
    let outcome = sys.run_supervised(rollback_config());
    let rollbacks = match &outcome {
        SupervisedOutcome::Completed(r) => r.rollbacks,
        SupervisedOutcome::Degraded(r) | SupervisedOutcome::Halted(r) => r.rollbacks,
    };
    let text = String::from_utf8(buf.0.borrow().clone()).expect("NDJSON is UTF-8");
    (text, outcome.name(), rollbacks)
}

/// Extract the integer field `"name":N` from one NDJSON line.
fn int_field(line: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let start = line.find(&key).expect("field present") + key.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("integer field")
}

/// The lines strictly after the last line matching `pred`.
fn suffix_after<'a>(lines: &[&'a str], pred: impl Fn(&str) -> bool) -> Vec<&'a str> {
    let idx = lines
        .iter()
        .rposition(|l| pred(l))
        .expect("marker line present");
    lines[idx + 1..].to_vec()
}

#[test]
fn resume_from_rollback_is_byte_identical_to_uninterrupted_run() {
    let samples = steady_samples(0.5);
    let iterations = samples.len() as u64;
    let (clean_text, clean_outcome, _) = traced_rollback_run(&samples, None);
    assert_eq!(clean_outcome, "completed");
    let clean_lines: Vec<&str> = clean_text.lines().collect();

    // Twelve distinct single-fault scenarios: a one-cycle fuel cut at
    // coroutine call slot `c + 4k` (coroutine c of iteration k), spread
    // across all three critical coroutines and across checkpoint windows.
    for seed in 1u64..=12 {
        let k = 1 + (seed * 5) % (iterations.saturating_sub(2) / 2);
        let c = 1 + (seed % 3);
        let op = c + 4 * k;
        let (text, outcome, rollbacks) =
            traced_rollback_run(&samples, Some(FaultPlan::new().fuel_cut_at(op, 1)));
        assert_eq!(
            outcome, "completed",
            "seed {seed}: fuel cut at op {op} did not recover"
        );
        assert!(rollbacks >= 1, "seed {seed}: no rollback happened");

        let lines: Vec<&str> = text.lines().collect();
        let rb = |l: &str| l.contains(r#""ev":"ckpt_rollback""#);
        let target = int_field(
            lines
                .iter()
                .rfind(|l| rb(l))
                .expect("rollback event present"),
            "to",
        );
        let faulted_suffix = suffix_after(&lines, rb);
        let clean_suffix = suffix_after(&clean_lines, |l| {
            l.contains(r#""ev":"ckpt_capture""#) && int_field(l, "iteration") == target
        });
        assert!(
            !faulted_suffix.is_empty(),
            "seed {seed}: nothing after the rollback"
        );
        assert_eq!(
            faulted_suffix, clean_suffix,
            "seed {seed}: post-rollback trace diverges from the uninterrupted run \
             (rolled back to iteration {target})"
        );
    }
}

#[test]
fn rollback_soak_replays_byte_identically_under_seeded_plans() {
    // Seeded plans now draw from the snapshot site too, so this soaks
    // bit-flips inside checkpoint windows alongside every other fault
    // kind — and demands exact replay of whatever happens.
    let samples = steady_samples(0.5);
    let shape = PlanShape::for_iterations(samples.len() as u64);
    for seed in 300u64..310 {
        let plan = || FaultPlan::seeded(seed, &shape, 8);
        let (a, outcome_a, _) = traced_rollback_run(&samples, Some(plan()));
        let (b, outcome_b, _) = traced_rollback_run(&samples, Some(plan()));
        assert!(
            matches!(outcome_a, "completed" | "degraded" | "halted"),
            "seed {seed}: untyped outcome {outcome_a}"
        );
        assert_eq!(
            outcome_a, outcome_b,
            "seed {seed}: outcome not reproducible"
        );
        assert_eq!(a, b, "seed {seed}: NDJSON replay differs");
    }
}

#[test]
fn corrupted_checkpoint_window_still_recovers_exactly() {
    // Rot the iteration-8 checkpoint, then starve the ICD coroutine at
    // iteration 10: recovery must reach past the rotten checkpoint to the
    // iteration-0 one and still converge on the clean run's suffix.
    let samples = steady_samples(0.5);
    let (clean_text, _, _) = traced_rollback_run(&samples, None);
    let clean_lines: Vec<&str> = clean_text.lines().collect();

    let plan = FaultPlan::new()
        .snapshot_corrupt_at(1, 4_242, 5)
        .fuel_cut_at(2 + 4 * 10, 1);
    let (text, outcome, rollbacks) = traced_rollback_run(&samples, Some(plan));
    assert_eq!(outcome, "completed");
    assert_eq!(rollbacks, 1);
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.iter().any(|l| l.contains(r#""ev":"audit_fail""#)),
        "corruption must be audit-logged"
    );
    let rb = |l: &str| l.contains(r#""ev":"ckpt_rollback""#);
    let target = int_field(lines.iter().rfind(|l| rb(l)).expect("rollback"), "to");
    assert_eq!(target, 0, "must reach past the rotten checkpoint");
    let faulted_suffix = suffix_after(&lines, rb);
    let clean_suffix = suffix_after(&clean_lines, |l| {
        l.contains(r#""ev":"ckpt_capture""#) && int_field(l, "iteration") == 0
    });
    assert_eq!(faulted_suffix, clean_suffix);
}
